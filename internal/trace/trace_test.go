package trace

import (
	"bytes"
	"testing"

	"repro/internal/simtime"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

func genOne(t *testing.T, app string, seed int64) *Trace {
	t.Helper()
	spec, err := webapp.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	return Generate(spec, seed, Options{})
}

func TestGenerateBasicShape(t *testing.T) {
	tr := genOne(t, "cnn", 1)
	if tr.Count() < 12 || tr.Count() > 70 {
		t.Errorf("trace has %d events, want within [12, 70]", tr.Count())
	}
	if tr.Events[0].Type != webevent.Load.String() {
		t.Errorf("first event = %s, want load", tr.Events[0].Type)
	}
	if tr.Duration() < 30*simtime.Second {
		t.Errorf("trace duration %v too short", tr.Duration())
	}
	// Triggers must be strictly increasing.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].TriggerUS <= tr.Events[i-1].TriggerUS {
			t.Fatalf("event %d trigger not increasing", i)
		}
	}
	// Sequence numbers must match positions.
	for i, e := range tr.Events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genOne(t, "amazon", 42)
	b := genOne(t, "amazon", 42)
	if a.Count() != b.Count() {
		t.Fatalf("same seed gave %d vs %d events", a.Count(), b.Count())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between identical generations", i)
		}
	}
	c := genOne(t, "amazon", 43)
	if a.Count() == c.Count() && len(a.Events) > 0 && a.Events[len(a.Events)-1] == c.Events[len(c.Events)-1] {
		t.Error("different seeds should produce different traces")
	}
}

func TestGenerateCoversInteractions(t *testing.T) {
	// Across a handful of traces each primitive interaction must appear, and
	// navigation taps must always be followed by loads.
	spec, _ := webapp.ByName("bbc")
	counts := map[webevent.Interaction]int{}
	for seed := int64(1); seed <= 5; seed++ {
		tr := Generate(spec, seed, Options{})
		evs, err := tr.Runtime()
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range evs {
			counts[e.Type.Interaction()]++
			if e.Navigation {
				if i+1 >= len(evs) {
					continue // trace may end right after a navigation tap
				}
				if evs[i+1].Type != webevent.Load {
					t.Fatalf("navigation tap at %d not followed by a load (got %v)", i, evs[i+1].Type)
				}
			}
		}
	}
	for _, in := range []webevent.Interaction{webevent.LoadInteraction, webevent.TapInteraction, webevent.MoveInteraction} {
		if counts[in] == 0 {
			t.Errorf("no %v events generated across 5 traces", in)
		}
	}
	if counts[webevent.MoveInteraction] < counts[webevent.LoadInteraction] {
		t.Error("moves should outnumber loads")
	}
}

func TestRuntimeConversion(t *testing.T) {
	tr := genOne(t, "ebay", 3)
	evs, err := tr.Runtime()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != tr.Count() {
		t.Fatalf("runtime events %d != trace events %d", len(evs), tr.Count())
	}
	for i, e := range evs {
		if e.App != "ebay" || e.Seq != i {
			t.Fatalf("runtime event %d metadata wrong: %+v", i, e)
		}
		if e.Work.Cycles <= 0 {
			t.Fatalf("runtime event %d has no work", i)
		}
		if e.Trigger.Micros() != tr.Events[i].TriggerUS {
			t.Fatalf("trigger mismatch at %d", i)
		}
	}
	// Corrupt the type and make sure conversion fails loudly.
	bad := *tr
	bad.Events = append([]Event(nil), tr.Events...)
	bad.Events[0].Type = "bogus"
	if _, err := bad.Runtime(); err == nil {
		t.Error("expected error for unknown event type")
	}
}

func TestSessionReconstruction(t *testing.T) {
	tr := genOne(t, "cnn", 9)
	sess, err := tr.Session()
	if err != nil {
		t.Fatal(err)
	}
	if sess.CurrentPage() != "home" {
		t.Errorf("reconstructed session should start at home, got %s", sess.CurrentPage())
	}
	if _, err := (&Trace{App: "doesnotexist"}).Session(); err == nil {
		t.Error("expected error for unknown app")
	}
}

func TestGenerateCorpusAndFilters(t *testing.T) {
	apps := webapp.SeenApps()[:3]
	c := GenerateCorpus(apps, 2, 1000, PurposeTrain, Options{})
	if len(c) != 6 {
		t.Fatalf("corpus has %d traces, want 6", len(c))
	}
	if got := len(c.Apps()); got != 3 {
		t.Errorf("corpus spans %d apps, want 3", got)
	}
	if got := len(c.ByApp(apps[0].Name)); got != 2 {
		t.Errorf("ByApp returned %d traces, want 2", got)
	}
	if c.TotalEvents() <= 0 {
		t.Error("corpus should contain events")
	}
	for _, tr := range c {
		if tr.Purpose != PurposeTrain {
			t.Errorf("trace purpose = %q", tr.Purpose)
		}
	}
	// Traces for the same app with different user indices must differ.
	same := c.ByApp(apps[0].Name)
	if same[0].Seed == same[1].Seed {
		t.Error("different users should have different seeds")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := GenerateCorpus(webapp.SeenApps()[:2], 1, 55, PurposeEval, Options{})
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(c) {
		t.Fatalf("decoded %d traces, want %d", len(back), len(c))
	}
	for i := range c {
		if back[i].App != c[i].App || back[i].Count() != c[i].Count() {
			t.Fatalf("trace %d does not round-trip", i)
		}
		for j := range c[i].Events {
			if back[i].Events[j] != c[i].Events[j] {
				t.Fatalf("trace %d event %d does not round-trip", i, j)
			}
		}
	}
	// Decoding garbage fails.
	if _, err := Decode(bytes.NewBufferString("{not json")); err == nil {
		t.Error("expected decode error")
	}
}

func TestTraceStatisticsMatchPaperScale(t *testing.T) {
	// The paper's traces average ~110 s and ~25 events (up to 70). Our
	// synthetic sessions must be in the same regime.
	var durations, counts []float64
	for _, spec := range webapp.SeenApps() {
		for seed := int64(1); seed <= 3; seed++ {
			tr := Generate(spec, seed, Options{})
			durations = append(durations, tr.Duration().Seconds())
			counts = append(counts, float64(tr.Count()))
		}
	}
	meanDur := mean(durations)
	meanCount := mean(counts)
	if meanDur < 80 || meanDur > 160 {
		t.Errorf("mean trace duration = %.1fs, want ~110s", meanDur)
	}
	if meanCount < 15 || meanCount > 70 {
		t.Errorf("mean event count = %.1f, want a few dozen", meanCount)
	}
}

func TestOptionsBounds(t *testing.T) {
	spec, _ := webapp.ByName("google")
	tr := Generate(spec, 5, Options{TargetDuration: 20 * simtime.Second, MinEvents: 5, MaxEvents: 10})
	if tr.Count() > 10 {
		t.Errorf("MaxEvents not respected: %d", tr.Count())
	}
	if tr.Count() < 5 {
		t.Errorf("MinEvents not respected: %d", tr.Count())
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
