package dom

import (
	"repro/internal/webevent"
)

// Role is the accessibility role of a node, as exposed by the Accessibility
// Tree that the paper piggybacks its Semantic Tree on. Roles let the DOM
// analyzer know what activating a node does (toggle a menu, navigate, submit
// a form) without evaluating the JavaScript callback.
type Role int

const (
	// RoleNone is a node with no interactive semantics.
	RoleNone Role = iota
	// RoleDocument is the page root.
	RoleDocument
	// RoleLink is a navigation link.
	RoleLink
	// RoleButton is a generic activatable control.
	RoleButton
	// RoleMenuToggle is a control that expands/collapses a menu.
	RoleMenuToggle
	// RoleMenu is a collapsible container.
	RoleMenu
	// RoleMenuItem is an entry of a collapsible container.
	RoleMenuItem
	// RoleForm is a form that can be submitted.
	RoleForm
	// RoleTextbox is an editable field.
	RoleTextbox
)

// String names the role.
func (r Role) String() string {
	names := [...]string{"none", "document", "link", "button", "menutoggle",
		"menu", "menuitem", "form", "textbox"}
	if int(r) < len(names) {
		return names[r]
	}
	return "role?"
}

// SemanticNode is one entry of the Semantic Tree: the accessibility role of
// a DOM node plus the memoized effect of activating it.
type SemanticNode struct {
	ID NodeID
	// Role is the accessibility role.
	Role Role
	// Toggles is the menu node whose visibility flips when this node is
	// activated (None when the node toggles nothing).
	Toggles NodeID
	// Navigates is the destination page when activating this node navigates
	// ("" otherwise).
	Navigates string
}

// SemanticTree mirrors the structure of a DOM tree but carries only the
// semantic attributes needed by the DOM analyzer. It is the reproduction of
// the paper's Semantic Tree, built on top of the Accessibility Tree during
// parsing, and allows the analyzer to determine the DOM state after an
// event statically.
type SemanticTree struct {
	dom   *Tree
	nodes map[NodeID]SemanticNode
}

// roleOf derives the accessibility role of a DOM node from its kind and its
// memoized semantic annotations.
func roleOf(n *Node) Role {
	switch {
	case n.TogglesMenu != None:
		return RoleMenuToggle
	case n.NavigatesTo != "" && n.Kind == Link:
		return RoleLink
	case n.NavigatesTo != "":
		return RoleButton
	case n.Kind == Document:
		return RoleDocument
	case n.Kind == Link:
		return RoleLink
	case n.Kind == Button:
		return RoleButton
	case n.Kind == Menu:
		return RoleMenu
	case n.Kind == MenuItem:
		return RoleMenuItem
	case n.Kind == Form:
		return RoleForm
	case n.Kind == Input:
		return RoleTextbox
	default:
		return RoleNone
	}
}

// BuildSemanticTree constructs the Semantic Tree for a DOM tree. In the real
// system this happens incrementally during parsing; here the page builders
// construct the DOM first and derive the semantic view in one pass, which is
// equivalent because the annotations (TogglesMenu, NavigatesTo) are already
// memoized on the DOM nodes.
func BuildSemanticTree(t *Tree) *SemanticTree {
	st := &SemanticTree{dom: t, nodes: make(map[NodeID]SemanticNode, t.Len())}
	t.Walk(func(n *Node) {
		st.nodes[n.ID] = SemanticNode{
			ID:        n.ID,
			Role:      roleOf(n),
			Toggles:   n.TogglesMenu,
			Navigates: n.NavigatesTo,
		}
	})
	return st
}

// Rebind returns a semantic tree carrying the same (immutable) semantic
// entries but evaluating dynamic queries (PostEventLNES) against t. The
// entries derive only from attributes that never change after a page is
// built (kind, TogglesMenu, NavigatesTo), so a cached master page's semantic
// view can be shared with every clone of that page.
func (s *SemanticTree) Rebind(t *Tree) *SemanticTree {
	return &SemanticTree{dom: t, nodes: s.nodes}
}

// Node returns the semantic entry for a DOM node.
func (s *SemanticTree) Node(id NodeID) SemanticNode { return s.nodes[id] }

// Role returns the accessibility role of a DOM node.
func (s *SemanticTree) Role(id NodeID) Role { return s.nodes[id].Role }

// Len returns the number of semantic entries.
func (s *SemanticTree) Len() int { return len(s.nodes) }

// PostEventLNES statically computes the Likely-Next-Event-Set of the DOM
// state that will exist after the given event executes, without evaluating
// the event's callback:
//
//   - a menu-toggle activation flips the memoized menu subtree and the LNES
//     is computed against the flipped state (then restored);
//   - a move event advances the viewport by one scroll step before computing
//     the LNES (then restores the scroll position);
//   - a navigation cannot be resolved from the current page alone, so nil is
//     returned and the caller falls back to the destination page's LNES or
//     to the unrestricted event set;
//   - anything else leaves the DOM unchanged and the current LNES applies.
func (s *SemanticTree) PostEventLNES(typ webevent.Type, target NodeID) []webevent.Type {
	t := s.dom
	if typ.IsMove() {
		savedTop := t.ViewportTop
		t.Scroll(t.ViewportHeight * ScrollStepFraction)
		lnes := t.LNES()
		t.ViewportTop = savedTop
		return lnes
	}
	if typ.IsTap() && target != None {
		sn, ok := s.nodes[target]
		if ok && sn.Toggles != None {
			menu := t.Node(sn.Toggles)
			menu.Hidden = !menu.Hidden
			lnes := t.LNES()
			menu.Hidden = !menu.Hidden
			return lnes
		}
		if ok && sn.Navigates != "" {
			return nil
		}
	}
	return t.LNES()
}
