package dom

import (
	"testing"
	"testing/quick"

	"repro/internal/webevent"
)

// buildTestPage constructs a small page with:
//   - a scrollable document with scroll listeners,
//   - a visible link that navigates,
//   - a button that toggles an initially hidden menu with two menu items,
//   - a below-the-fold link that is not initially visible.
func buildTestPage() (*Tree, map[string]NodeID) {
	t := NewTree("home", 3000, 1000)
	ids := make(map[string]NodeID)
	root := t.Root()
	t.Node(root).Listeners = []webevent.Type{webevent.Scroll}

	ids["link"] = t.Add(&Node{
		Kind: Link, Parent: root, Y: 100, Height: 50, Area: 0.05,
		Listeners:   []webevent.Type{webevent.Click},
		NavigatesTo: "article",
	})
	menu := t.Add(&Node{Kind: Menu, Parent: root, Y: 300, Height: 200, Area: 0.2, Hidden: true})
	ids["menu"] = menu
	ids["toggle"] = t.Add(&Node{
		Kind: Button, Parent: root, Y: 250, Height: 40, Area: 0.04,
		Listeners:   []webevent.Type{webevent.Click},
		TogglesMenu: menu,
	})
	ids["item1"] = t.Add(&Node{
		Kind: MenuItem, Parent: menu, Y: 310, Height: 40, Area: 0.04,
		Listeners: []webevent.Type{webevent.Click}, NavigatesTo: "section1",
	})
	ids["item2"] = t.Add(&Node{
		Kind: MenuItem, Parent: menu, Y: 360, Height: 40, Area: 0.04,
		Listeners: []webevent.Type{webevent.Click}, NavigatesTo: "section2",
	})
	ids["deep-link"] = t.Add(&Node{
		Kind: Link, Parent: root, Y: 2500, Height: 50, Area: 0.05,
		Listeners:   []webevent.Type{webevent.Click},
		NavigatesTo: "deep",
	})
	ids["form"] = t.Add(&Node{
		Kind: Form, Parent: root, Y: 700, Height: 100, Area: 0.1,
		Listeners: []webevent.Type{webevent.Submit},
	})
	return t, ids
}

func TestTreeBasics(t *testing.T) {
	tree, ids := buildTestPage()
	if tree.Len() != 8 {
		t.Errorf("Len = %d, want 8", tree.Len())
	}
	if tree.Root() == None {
		t.Fatal("no root")
	}
	if tree.Node(ids["link"]).Kind != Link {
		t.Error("node lookup wrong")
	}
	count := 0
	tree.Walk(func(*Node) { count++ })
	if count != 8 {
		t.Errorf("Walk visited %d nodes", count)
	}
}

func TestVisibility(t *testing.T) {
	tree, ids := buildTestPage()
	if !tree.Visible(ids["link"]) {
		t.Error("above-the-fold link should be visible")
	}
	if tree.Visible(ids["deep-link"]) {
		t.Error("below-the-fold link should not be visible")
	}
	if tree.Visible(ids["item1"]) {
		t.Error("item inside a hidden menu should not be visible")
	}
	// Unhide the menu: items become visible.
	tree.Node(ids["menu"]).Hidden = false
	if !tree.Visible(ids["item1"]) {
		t.Error("menu item should be visible after the menu is shown")
	}
	// Scroll to the bottom: deep link becomes visible, top link does not.
	tree.Scroll(2200)
	if !tree.Visible(ids["deep-link"]) {
		t.Error("deep link should be visible after scrolling down")
	}
	if tree.Visible(ids["link"]) {
		t.Error("top link should have scrolled out of the viewport")
	}
}

func TestScrollClamping(t *testing.T) {
	tree, _ := buildTestPage()
	moved := tree.Scroll(-500)
	if moved != 0 || tree.ViewportTop != 0 {
		t.Errorf("scrolling above the page should clamp: moved=%v top=%v", moved, tree.ViewportTop)
	}
	moved = tree.Scroll(1e9)
	if tree.ViewportTop != 2000 || moved != 2000 {
		t.Errorf("scrolling past the bottom should clamp to 2000, got top=%v moved=%v", tree.ViewportTop, moved)
	}
	if tree.ScrollFraction() != 1 {
		t.Errorf("ScrollFraction at bottom = %v", tree.ScrollFraction())
	}
	if !tree.Scrollable() {
		t.Error("page should be scrollable")
	}
	flat := NewTree("flat", 500, 1000)
	if flat.Scrollable() || flat.ScrollFraction() != 0 {
		t.Error("single-viewport page should not be scrollable")
	}
}

func TestFractions(t *testing.T) {
	tree, ids := buildTestPage()
	cf := tree.ClickableFraction()
	// link(0.05) + toggle(0.04) + form is submit-only (not a tap listener? submit is tap) -> includes form 0.1
	if cf <= 0 || cf > 1 {
		t.Fatalf("ClickableFraction out of range: %v", cf)
	}
	lf := tree.LinkFraction()
	if lf <= 0 || lf >= cf {
		t.Errorf("LinkFraction = %v, ClickableFraction = %v", lf, cf)
	}
	// Showing the menu increases the clickable area.
	tree.Node(ids["menu"]).Hidden = false
	if tree.ClickableFraction() <= cf {
		t.Error("showing the menu should increase the clickable fraction")
	}
	if tree.ViewportCenterY() <= 0 || tree.ViewportCenterY() >= 1 {
		t.Errorf("ViewportCenterY = %v", tree.ViewportCenterY())
	}
}

func TestPartialVisibilityArea(t *testing.T) {
	tree := NewTree("p", 2000, 1000)
	root := tree.Root()
	// A node straddling the viewport bottom: only half its height is visible.
	id := tree.Add(&Node{Kind: Link, Parent: root, Y: 900, Height: 200, Area: 0.2,
		Listeners: []webevent.Type{webevent.Click}})
	got := tree.LinkFraction()
	if got <= 0.09 || got >= 0.11 {
		t.Errorf("half-visible node should contribute ~0.1, got %v", got)
	}
	_ = id
}

func TestLNES(t *testing.T) {
	tree, ids := buildTestPage()
	lnes := tree.LNES()
	has := func(types []webevent.Type, typ webevent.Type) bool {
		for _, x := range types {
			if x == typ {
				return true
			}
		}
		return false
	}
	if !has(lnes, webevent.Click) || !has(lnes, webevent.Scroll) || !has(lnes, webevent.Load) || !has(lnes, webevent.Submit) {
		t.Errorf("LNES = %v, want click+scroll+load+submit", lnes)
	}
	if has(lnes, webevent.TouchStart) {
		t.Error("touchstart should not be possible: no listener registered")
	}
	// Hide everything tappable: only scroll remains.
	for _, key := range []string{"link", "toggle", "form", "deep-link"} {
		tree.Node(ids[key]).Hidden = true
	}
	lnes = tree.LNES()
	if has(lnes, webevent.Click) || has(lnes, webevent.Load) {
		t.Errorf("LNES after hiding = %v, should not contain click/load", lnes)
	}
	if !has(lnes, webevent.Scroll) {
		t.Error("scroll should remain possible")
	}
}

func TestApplyEventMenuToggle(t *testing.T) {
	tree, ids := buildTestPage()
	mut := tree.ApplyEvent(webevent.Click, ids["toggle"])
	if mut.Kind != MenuToggled || mut.Menu != ids["menu"] {
		t.Fatalf("mutation = %+v", mut)
	}
	if tree.Node(ids["menu"]).Hidden {
		t.Error("menu should now be visible")
	}
	// Toggling again hides it.
	tree.ApplyEvent(webevent.Click, ids["toggle"])
	if !tree.Node(ids["menu"]).Hidden {
		t.Error("menu should be hidden again")
	}
}

func TestApplyEventNavigationAndScroll(t *testing.T) {
	tree, ids := buildTestPage()
	mut := tree.ApplyEvent(webevent.Click, ids["link"])
	if mut.Kind != Navigated || mut.Page != "article" {
		t.Errorf("mutation = %+v", mut)
	}
	before := tree.ViewportTop
	mut = tree.ApplyEvent(webevent.Scroll, None)
	if mut.Kind != Scrolled || tree.ViewportTop <= before {
		t.Errorf("scroll mutation = %+v, top %v -> %v", mut, before, tree.ViewportTop)
	}
	// A click on a plain node mutates nothing.
	plain := tree.Add(&Node{Kind: Text, Parent: tree.Root(), Y: 10, Height: 10})
	if mut := tree.ApplyEvent(webevent.Click, plain); mut.Kind != NoMutation {
		t.Errorf("plain click mutation = %+v", mut)
	}
	if mut := tree.ApplyEvent(webevent.Load, None); mut.Kind != NoMutation {
		t.Errorf("load mutation = %+v", mut)
	}
}

func TestSemanticTreeRoles(t *testing.T) {
	tree, ids := buildTestPage()
	st := BuildSemanticTree(tree)
	if st.Len() != tree.Len() {
		t.Errorf("semantic tree has %d entries, dom has %d", st.Len(), tree.Len())
	}
	if st.Role(ids["toggle"]) != RoleMenuToggle {
		t.Errorf("toggle role = %v", st.Role(ids["toggle"]))
	}
	if st.Role(ids["link"]) != RoleLink {
		t.Errorf("link role = %v", st.Role(ids["link"]))
	}
	if st.Role(ids["form"]) != RoleForm {
		t.Errorf("form role = %v", st.Role(ids["form"]))
	}
	if st.Role(tree.Root()) != RoleDocument {
		t.Errorf("root role = %v", st.Role(tree.Root()))
	}
	if st.Node(ids["item1"]).Navigates != "section1" {
		t.Errorf("item1 navigates = %q", st.Node(ids["item1"]).Navigates)
	}
}

func TestPostEventLNESMenuToggleWithoutEvaluation(t *testing.T) {
	tree, ids := buildTestPage()
	st := BuildSemanticTree(tree)
	// Before the toggle, the menu items' navigation targets are invisible, so
	// the post-click LNES (of the toggle) must include Load via the menu
	// items becoming visible — computed WITHOUT mutating the live DOM.
	menuHiddenBefore := tree.Node(ids["menu"]).Hidden
	lnes := st.PostEventLNES(webevent.Click, ids["toggle"])
	if tree.Node(ids["menu"]).Hidden != menuHiddenBefore {
		t.Fatal("PostEventLNES must not leave the DOM mutated")
	}
	hasClick := false
	for _, typ := range lnes {
		if typ == webevent.Click {
			hasClick = true
		}
	}
	if !hasClick {
		t.Errorf("post-toggle LNES = %v, want click present (menu items)", lnes)
	}
}

func TestPostEventLNESNavigationAndMove(t *testing.T) {
	tree, ids := buildTestPage()
	st := BuildSemanticTree(tree)
	if lnes := st.PostEventLNES(webevent.Click, ids["link"]); lnes != nil {
		t.Errorf("navigation post-LNES should be nil (unknown page), got %v", lnes)
	}
	top := tree.ViewportTop
	lnes := st.PostEventLNES(webevent.Scroll, None)
	if tree.ViewportTop != top {
		t.Error("PostEventLNES for a move must restore the scroll position")
	}
	if len(lnes) == 0 {
		t.Error("post-scroll LNES should not be empty")
	}
	// A tap on a non-semantic node leaves the LNES unchanged.
	plain := tree.Add(&Node{Kind: Text, Parent: tree.Root(), Y: 10, Height: 10})
	if got := st.PostEventLNES(webevent.Click, plain); len(got) == 0 {
		t.Error("plain-tap post-LNES should equal the current LNES")
	}
}

func TestInvalidNodePanics(t *testing.T) {
	tree, _ := buildTestPage()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid node id")
		}
	}()
	tree.Node(NodeID(9999))
}

func TestKindAndRoleStrings(t *testing.T) {
	if Document.String() != "document" || MenuItem.String() != "menuitem" {
		t.Error("Kind names wrong")
	}
	if Kind(99).String() == "" || Role(99).String() == "" {
		t.Error("unknown kinds/roles should render")
	}
	if RoleMenuToggle.String() != "menutoggle" {
		t.Error("Role names wrong")
	}
}

// Property: ClickableFraction and LinkFraction are always within [0, 1]
// regardless of scroll position.
func TestFractionBoundsProperty(t *testing.T) {
	f := func(scrollRaw uint16) bool {
		tree, _ := buildTestPage()
		tree.Scroll(float64(scrollRaw))
		cf := tree.ClickableFraction()
		lf := tree.LinkFraction()
		return cf >= 0 && cf <= 1 && lf >= 0 && lf <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scrolling never moves the viewport outside the page.
func TestScrollBoundsProperty(t *testing.T) {
	f := func(deltas []int16) bool {
		tree, _ := buildTestPage()
		for _, d := range deltas {
			tree.Scroll(float64(d))
			if tree.ViewportTop < 0 || tree.ViewportTop > tree.PageHeight-tree.ViewportHeight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
