// Package dom provides the Document Object Model substrate that the PES
// predictor analyzes.
//
// The model is intentionally structural: nodes have a kind, a vertical
// position on the page, an on-screen area, registered event listeners, and
// the two pieces of semantic information the paper's Semantic Tree memoizes
// during parsing — whether activating the node toggles the visibility of
// another subtree (collapsible menus) and whether it navigates to another
// page. This is enough to compute the application-inherent prediction
// features of Table 1 (clickable-region and visible-link percentages) and
// the Likely-Next-Event-Set (LNES) used by the DOM analyzer, including the
// post-event DOM state after a menu toggle, without evaluating callbacks.
package dom

import (
	"fmt"

	"repro/internal/webevent"
)

// NodeID identifies a node within a Tree. The zero NodeID means "no node".
type NodeID int

// None is the absent-node sentinel.
const None NodeID = 0

// Kind classifies a DOM node by its role on the page.
type Kind int

const (
	// Document is the root node of a page.
	Document Kind = iota
	// Container is a generic block element (div/section).
	Container
	// Text is static text content.
	Text
	// Link is an anchor that may navigate to another page.
	Link
	// Button is a clickable control.
	Button
	// Image is a picture; images may or may not carry listeners.
	Image
	// Input is a form field.
	Input
	// Form is a form container; submit events are delivered here.
	Form
	// Menu is a collapsible container toggled by some Button/Link.
	Menu
	// MenuItem is an entry inside a Menu.
	MenuItem
	// Video is an embedded media element.
	Video

	// NumKinds is the number of node kinds.
	NumKinds int = iota
)

// String names the node kind.
func (k Kind) String() string {
	names := [...]string{"document", "container", "text", "link", "button",
		"image", "input", "form", "menu", "menuitem", "video"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is one element of the DOM tree.
type Node struct {
	ID       NodeID
	Kind     Kind
	Parent   NodeID
	Children []NodeID
	// Listeners are the event types registered on this node.
	Listeners []webevent.Type
	// Hidden corresponds to display:none — the node and its subtree do not
	// occupy screen space.
	Hidden bool
	// Y and Height place the node vertically on the page, in abstract page
	// units (the page spans [0, Tree.PageHeight)).
	Y, Height float64
	// Area is the fraction of the viewport the node covers when it is fully
	// inside the viewport (0–1).
	Area float64
	// TogglesMenu records, in the Semantic Tree sense, that activating this
	// node flips the Hidden state of the referenced node.
	TogglesMenu NodeID
	// NavigatesTo records that activating this node navigates to the named
	// page ("" when it does not navigate).
	NavigatesTo string
}

// HasListener reports whether the node has a listener for t.
func (n *Node) HasListener(t webevent.Type) bool {
	for _, l := range n.Listeners {
		if l == t {
			return true
		}
	}
	return false
}

// Tappable reports whether the node reacts to any tap-interaction event.
func (n *Node) Tappable() bool {
	for _, l := range n.Listeners {
		if l.IsTap() {
			return true
		}
	}
	return false
}

// Tree is a DOM tree plus the viewport geometry of the page.
type Tree struct {
	// Page is the name of the page this tree renders.
	Page string
	// PageHeight is the total scrollable height in page units.
	PageHeight float64
	// ViewportHeight is the visible window height in page units.
	ViewportHeight float64
	// ViewportTop is the current scroll offset.
	ViewportTop float64

	nodes []*Node // nodes[0] is unused so that NodeID 0 can mean "none"
	root  NodeID
}

// NewTree creates a tree for the named page with the given geometry and a
// Document root spanning the whole page. Scroll listeners should be
// registered on the root by the page builder when the page is scrollable.
func NewTree(page string, pageHeight, viewportHeight float64) *Tree {
	if pageHeight < viewportHeight {
		pageHeight = viewportHeight
	}
	t := &Tree{
		Page:           page,
		PageHeight:     pageHeight,
		ViewportHeight: viewportHeight,
		nodes:          make([]*Node, 1, 64),
	}
	t.root = t.Add(&Node{Kind: Document, Y: 0, Height: pageHeight})
	return t
}

// Add inserts a node into the tree, assigning its ID and linking it to its
// parent (if any). It returns the new node's ID.
func (t *Tree) Add(n *Node) NodeID {
	id := NodeID(len(t.nodes))
	n.ID = id
	t.nodes = append(t.nodes, n)
	if n.Parent != None {
		p := t.Node(n.Parent)
		p.Children = append(p.Children, id)
	}
	return id
}

// Root returns the ID of the document root.
func (t *Tree) Root() NodeID { return t.root }

// Clone returns an independent copy of the tree that can be mutated (menu
// toggles, scrolling) without affecting the receiver. Node value fields are
// copied; the Children and Listeners slices are shared with the original
// because they are only ever appended to while a page is being built, never
// after. Cloning a built page is much cheaper than rebuilding it, which is
// what makes the shared page-tree cache (package webapp) pay off.
func (t *Tree) Clone() *Tree {
	ct := *t
	ct.nodes = make([]*Node, len(t.nodes))
	// nodes[0] is the nil "none" slot; copy the rest by value.
	copied := make([]Node, len(t.nodes)-1)
	for i, n := range t.nodes[1:] {
		copied[i] = *n
		ct.nodes[i+1] = &copied[i]
	}
	return &ct
}

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int { return len(t.nodes) - 1 }

// Node returns the node with the given ID. It panics for invalid IDs; the
// tree is an internal data structure and IDs always come from Add.
func (t *Tree) Node(id NodeID) *Node {
	if id <= 0 || int(id) >= len(t.nodes) {
		panic(fmt.Sprintf("dom: invalid node id %d", id))
	}
	return t.nodes[id]
}

// Walk visits every node in ID order.
func (t *Tree) Walk(f func(*Node)) {
	for _, n := range t.nodes[1:] {
		f(n)
	}
}

// effectiveHidden reports whether the node or any ancestor is hidden.
func (t *Tree) effectiveHidden(n *Node) bool {
	for {
		if n.Hidden {
			return true
		}
		if n.Parent == None {
			return false
		}
		n = t.Node(n.Parent)
	}
}

// inViewport reports whether the node's vertical extent intersects the
// current viewport.
func (t *Tree) inViewport(n *Node) bool {
	top := t.ViewportTop
	bottom := top + t.ViewportHeight
	return n.Y < bottom && n.Y+n.Height > top
}

// Visible reports whether a node is currently visible: not hidden (directly
// or via an ancestor) and intersecting the viewport.
func (t *Tree) Visible(id NodeID) bool {
	n := t.Node(id)
	return !t.effectiveHidden(n) && t.inViewport(n)
}

// VisibleNodes returns the IDs of all currently visible nodes in ID order.
func (t *Tree) VisibleNodes() []NodeID {
	var out []NodeID
	for _, n := range t.nodes[1:] {
		if !t.effectiveHidden(n) && t.inViewport(n) {
			out = append(out, n.ID)
		}
	}
	return out
}

// visibleAreaFraction returns the fraction of the viewport covered by the
// visible portion of node n (its Area scaled by the visible share of its
// height).
func (t *Tree) visibleAreaFraction(n *Node) float64 {
	if n.Height <= 0 {
		return 0
	}
	top := t.ViewportTop
	bottom := top + t.ViewportHeight
	visTop := n.Y
	if visTop < top {
		visTop = top
	}
	visBottom := n.Y + n.Height
	if visBottom > bottom {
		visBottom = bottom
	}
	if visBottom <= visTop {
		return 0
	}
	return n.Area * (visBottom - visTop) / n.Height
}

// ClickableFraction returns the fraction of the viewport covered by visible
// nodes that react to a tap interaction — the paper's "clickable region
// percentage in the viewport" feature. The result is clamped to [0, 1].
func (t *Tree) ClickableFraction() float64 {
	sum := 0.0
	for _, n := range t.nodes[1:] {
		if t.effectiveHidden(n) || !n.Tappable() {
			continue
		}
		sum += t.visibleAreaFraction(n)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// LinkFraction returns the fraction of the viewport covered by visible link
// nodes — the paper's "visible link percentage in the viewport" feature.
func (t *Tree) LinkFraction() float64 {
	sum := 0.0
	for _, n := range t.nodes[1:] {
		if n.Kind != Link || t.effectiveHidden(n) {
			continue
		}
		sum += t.visibleAreaFraction(n)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// ScrollStepFraction is the fraction of the viewport height a single move
// event advances the viewport by (one flick of the thumb).
const ScrollStepFraction = 0.55

// Scrollable reports whether the page extends beyond a single viewport.
func (t *Tree) Scrollable() bool { return t.PageHeight > t.ViewportHeight+1e-9 }

// AtBottom reports whether the viewport has (essentially) reached the end of
// the page, i.e. a further downward scroll would not reveal new content.
func (t *Tree) AtBottom() bool { return t.ScrollFraction() >= 0.995 }

// Scroll moves the viewport by dy page units, clamped to the page bounds,
// and returns the actual displacement.
func (t *Tree) Scroll(dy float64) float64 {
	maxTop := t.PageHeight - t.ViewportHeight
	newTop := t.ViewportTop + dy
	if newTop < 0 {
		newTop = 0
	}
	if newTop > maxTop {
		newTop = maxTop
	}
	moved := newTop - t.ViewportTop
	t.ViewportTop = newTop
	return moved
}

// ScrollFraction returns how far down the page the viewport currently is,
// in [0, 1]; 0 when the page is not scrollable.
func (t *Tree) ScrollFraction() float64 {
	maxTop := t.PageHeight - t.ViewportHeight
	if maxTop <= 0 {
		return 0
	}
	return t.ViewportTop / maxTop
}

// ViewportCenterY returns the vertical centre of the viewport as a fraction
// of the page height; used for the "distance to previous click" feature.
func (t *Tree) ViewportCenterY() float64 {
	if t.PageHeight <= 0 {
		return 0
	}
	return (t.ViewportTop + t.ViewportHeight/2) / t.PageHeight
}

// VisibleTappable returns the visible nodes that react to tap events.
func (t *Tree) VisibleTappable() []NodeID {
	var out []NodeID
	for _, id := range t.VisibleNodes() {
		if t.Node(id).Tappable() {
			out = append(out, id)
		}
	}
	return out
}

// VisitVisibleTappable calls f for every visible tappable node in ID order
// (the same order VisibleTappable returns), stopping early when f returns
// false. It is the allocation-free counterpart of VisibleTappable, used on
// the predictor's per-event path.
func (t *Tree) VisitVisibleTappable(f func(*Node) bool) {
	for _, n := range t.nodes[1:] {
		if n.Tappable() && !t.effectiveHidden(n) && t.inViewport(n) {
			if !f(n) {
				return
			}
		}
	}
}

// LNES computes the Likely-Next-Event-Set: the set of DOM-level event types
// that could possibly be triggered by the next user input given the current
// visible DOM state. A Load is possible only when a visible node navigates;
// move events are possible only when the page is scrollable, further content
// remains below the viewport, and a move listener is registered on a visible
// node (typically the document root).
func (t *Tree) LNES() []webevent.Type {
	return t.AppendLNES(nil)
}

// AppendLNES appends the Likely-Next-Event-Set to dst (in ascending type
// order, the same as LNES) and returns the extended slice. Passing a buffer
// with spare capacity makes the computation allocation-free; it is the
// per-prediction fast path of the DOM analyzer.
func (t *Tree) AppendLNES(dst []webevent.Type) []webevent.Type {
	var set [webevent.NumTypes]bool
	moveOK := t.Scrollable() && !t.AtBottom()
	for _, n := range t.nodes[1:] {
		if t.effectiveHidden(n) || !t.inViewport(n) {
			continue
		}
		for _, l := range n.Listeners {
			if l.IsMove() && !moveOK {
				continue
			}
			set[l] = true
		}
		if n.NavigatesTo != "" && n.Tappable() {
			set[webevent.Load] = true
		}
	}
	for typ := webevent.Type(0); int(typ) < webevent.NumTypes; typ++ {
		if set[typ] {
			dst = append(dst, typ)
		}
	}
	return dst
}

// MutationKind describes what applying an event did to the DOM.
type MutationKind int

const (
	// NoMutation means the DOM structure did not change.
	NoMutation MutationKind = iota
	// MenuToggled means a collapsible subtree changed visibility.
	MenuToggled
	// Navigated means the event navigates to another page; the caller must
	// replace the tree with the destination page's tree.
	Navigated
	// Scrolled means the viewport moved.
	Scrolled
)

// Mutation is the result of applying an event to the tree.
type Mutation struct {
	Kind MutationKind
	// Menu is the toggled menu node for MenuToggled mutations.
	Menu NodeID
	// Page is the destination page for Navigated mutations.
	Page string
}

// ApplyEvent mutates the DOM in response to an event delivered to target:
// menu toggles flip the referenced subtree's visibility, navigation taps
// report the destination page, and move events scroll the viewport by one
// step (ScrollStepFraction of the viewport). Unknown targets (e.g. a load
// event) leave the DOM unchanged.
func (t *Tree) ApplyEvent(typ webevent.Type, target NodeID) Mutation {
	if typ.IsMove() {
		t.Scroll(t.ViewportHeight * ScrollStepFraction)
		return Mutation{Kind: Scrolled}
	}
	if target == None || int(target) >= len(t.nodes) || !typ.IsTap() {
		return Mutation{Kind: NoMutation}
	}
	n := t.Node(target)
	if n.TogglesMenu != None {
		menu := t.Node(n.TogglesMenu)
		menu.Hidden = !menu.Hidden
		return Mutation{Kind: MenuToggled, Menu: menu.ID}
	}
	if n.NavigatesTo != "" {
		return Mutation{Kind: Navigated, Page: n.NavigatesTo}
	}
	return Mutation{Kind: NoMutation}
}
