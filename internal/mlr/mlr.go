// Package mlr implements the multinomial (one-vs-rest) logistic regression
// model that the paper's event sequence learner is built on.
//
// The paper deliberately chooses logistic regression over heavier sequence
// models (LSTM) because a five-feature logistic model is accurate enough and
// costs ~2 µs per evaluation. This package mirrors that design: a set of
// binary logistic models, one per possible next event, trained offline with
// stochastic gradient descent; at prediction time the class with the highest
// probability wins, and the probability doubles as the prediction's
// confidence value.
package mlr

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// ErrNotTrained is returned when predicting with an untrained model.
var ErrNotTrained = errors.New("mlr: model has not been trained")

// Sample is one training example: a feature vector and its class label.
type Sample struct {
	Features []float64
	Label    int
}

// Model is a one-vs-rest logistic regression classifier.
type Model struct {
	// NumFeatures is the dimensionality of the feature vectors (bias not
	// included; the model adds its own intercept).
	NumFeatures int `json:"num_features"`
	// NumClasses is the number of distinct labels.
	NumClasses int `json:"num_classes"`
	// Weights[c] holds the per-class weight vector; index 0 is the intercept
	// followed by NumFeatures feature weights.
	Weights [][]float64 `json:"weights"`
}

// NewModel allocates an untrained model for the given shape.
func NewModel(numFeatures, numClasses int) *Model {
	w := make([][]float64, numClasses)
	for c := range w {
		w[c] = make([]float64, numFeatures+1)
	}
	return &Model{NumFeatures: numFeatures, NumClasses: numClasses, Weights: w}
}

// Trained reports whether the model has weights (Fit has been called or the
// model was loaded from a file).
func (m *Model) Trained() bool { return len(m.Weights) == m.NumClasses && m.NumClasses > 0 }

func sigmoid(z float64) float64 {
	// Clamp to avoid overflow in Exp for extreme logits.
	if z < -30 {
		return 1e-13
	}
	if z > 30 {
		return 1 - 1e-13
	}
	return 1 / (1 + math.Exp(-z))
}

// score returns the raw probability of class c for features x.
func (m *Model) score(c int, x []float64) float64 {
	w := m.Weights[c]
	z := w[0]
	for i, xi := range x {
		z += w[i+1] * xi
	}
	return sigmoid(z)
}

// Probabilities returns the per-class probabilities for the feature vector,
// normalized to sum to 1 across classes.
func (m *Model) Probabilities(x []float64) ([]float64, error) {
	return m.ProbabilitiesInto(nil, x)
}

// ProbabilitiesInto is Probabilities with a caller-provided buffer: the
// probabilities are written into dst when its capacity suffices (making the
// evaluation allocation-free) and the result slice is returned either way.
// This is the per-predicted-event fast path; each predictor instance owns
// one buffer and reuses it across evaluations.
func (m *Model) ProbabilitiesInto(dst, x []float64) ([]float64, error) {
	if !m.Trained() {
		return nil, ErrNotTrained
	}
	if len(x) != m.NumFeatures {
		return nil, fmt.Errorf("mlr: feature vector has %d entries, model expects %d", len(x), m.NumFeatures)
	}
	if cap(dst) < m.NumClasses {
		dst = make([]float64, m.NumClasses)
	}
	probs := dst[:m.NumClasses]
	sum := 0.0
	for c := range probs {
		probs[c] = m.score(c, x)
		sum += probs[c]
	}
	if sum <= 0 {
		// Degenerate model: fall back to uniform.
		for c := range probs {
			probs[c] = 1 / float64(m.NumClasses)
		}
		return probs, nil
	}
	for c := range probs {
		probs[c] /= sum
	}
	return probs, nil
}

// Predict returns the most probable class and its (normalized) probability,
// which the event sequence learner uses as the prediction confidence.
func (m *Model) Predict(x []float64) (class int, confidence float64, err error) {
	class, confidence, _, err = m.PredictBuf(nil, x)
	return class, confidence, err
}

// PredictBuf is Predict with a caller-provided probability buffer (see
// ProbabilitiesInto). It additionally returns the (possibly grown) buffer so
// the caller can keep it for the next evaluation.
func (m *Model) PredictBuf(buf, x []float64) (class int, confidence float64, probs []float64, err error) {
	probs, err = m.ProbabilitiesInto(buf, x)
	if err != nil {
		return 0, 0, buf, err
	}
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best, probs[best], probs, nil
}

// PredictRestricted returns the most probable class among the allowed set
// (the Likely-Next-Event-Set); confidence is renormalized over the allowed
// classes. When allowed is empty the full class set is used.
func (m *Model) PredictRestricted(x []float64, allowed []int) (class int, confidence float64, err error) {
	class, confidence, _, err = m.PredictRestrictedBuf(nil, x, allowed)
	return class, confidence, err
}

// PredictRestrictedBuf is PredictRestricted with a caller-provided
// probability buffer (see ProbabilitiesInto); the (possibly grown) buffer is
// returned for reuse.
func (m *Model) PredictRestrictedBuf(buf, x []float64, allowed []int) (class int, confidence float64, probs []float64, err error) {
	probs, err = m.ProbabilitiesInto(buf, x)
	if err != nil {
		return 0, 0, buf, err
	}
	if len(allowed) == 0 {
		return m.bestOf(probs)
	}
	sum := 0.0
	best := -1
	for _, c := range allowed {
		if c < 0 || c >= m.NumClasses {
			continue
		}
		sum += probs[c]
		if best == -1 || probs[c] > probs[best] {
			best = c
		}
	}
	if best == -1 {
		return m.bestOf(probs)
	}
	if sum <= 0 {
		return best, 1 / float64(len(allowed)), probs, nil
	}
	return best, probs[best] / sum, probs, nil
}

// bestOf returns the argmax over already-computed probabilities.
func (m *Model) bestOf(probs []float64) (class int, confidence float64, out []float64, err error) {
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best, probs[best], probs, nil
}

// TrainConfig controls SGD training.
type TrainConfig struct {
	// Epochs is the number of passes over the training set (default 120).
	Epochs int
	// LearningRate is the SGD step size (default 0.15).
	LearningRate float64
	// L2 is the L2 regularization strength (default 1e-4).
	L2 float64
	// Seed seeds the shuffling of samples between epochs.
	Seed int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 120
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.15
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fit trains the model on the samples with plain SGD. Labels must be in
// [0, NumClasses). Training is deterministic for a fixed config.
func (m *Model) Fit(samples []Sample, cfg TrainConfig) error {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return errors.New("mlr: no training samples")
	}
	for _, s := range samples {
		if len(s.Features) != m.NumFeatures {
			return fmt.Errorf("mlr: sample has %d features, model expects %d", len(s.Features), m.NumFeatures)
		}
		if s.Label < 0 || s.Label >= m.NumClasses {
			return fmt.Errorf("mlr: label %d out of range [0, %d)", s.Label, m.NumClasses)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(samples))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Re-shuffle each epoch for SGD convergence.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate / (1 + 0.02*float64(epoch))
		for _, idx := range order {
			s := samples[idx]
			for c := 0; c < m.NumClasses; c++ {
				y := 0.0
				if s.Label == c {
					y = 1.0
				}
				p := m.score(c, s.Features)
				g := p - y
				w := m.Weights[c]
				w[0] -= lr * g
				for i, xi := range s.Features {
					w[i+1] -= lr * (g*xi + cfg.L2*w[i+1])
				}
			}
		}
	}
	return nil
}

// Accuracy returns the top-1 accuracy of the model over the samples.
func (m *Model) Accuracy(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("mlr: no samples")
	}
	correct := 0
	for _, s := range samples {
		c, _, err := m.Predict(s.Features)
		if err != nil {
			return 0, err
		}
		if c == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}

// Save serializes the model as JSON; the paper persists its trained model to
// local storage and loads it when the application boots.
func (m *Model) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(m)
}

// Load reads a model previously written with Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("mlr: load: %w", err)
	}
	if m.NumClasses != len(m.Weights) {
		return nil, errors.New("mlr: corrupt model: class count mismatch")
	}
	for _, w := range m.Weights {
		if len(w) != m.NumFeatures+1 {
			return nil, errors.New("mlr: corrupt model: weight vector length mismatch")
		}
	}
	return &m, nil
}
