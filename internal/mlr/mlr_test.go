package mlr

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthSamples builds a linearly separable three-class problem.
func synthSamples(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []Sample
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		label := 0
		switch {
		case x[0] > 0.6 && x[1] < 0.5:
			label = 1
		case x[2] > 0.65:
			label = 2
		}
		out = append(out, Sample{Features: x, Label: label})
	}
	return out
}

func TestFitAndPredict(t *testing.T) {
	train := synthSamples(2000, 1)
	test := synthSamples(500, 2)
	m := NewModel(3, 3)
	if err := m.Fit(train, TrainConfig{}); err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("held-out accuracy = %.3f, want ≥ 0.85 on a near-separable problem", acc)
	}
}

func TestProbabilitiesNormalized(t *testing.T) {
	m := NewModel(3, 4)
	if err := m.Fit(synthSamples(500, 3), TrainConfig{Epochs: 20}); err != nil {
		t.Fatal(err)
	}
	probs, err := m.Probabilities([]float64{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("probability %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestPredictRestricted(t *testing.T) {
	train := synthSamples(2000, 4)
	m := NewModel(3, 3)
	if err := m.Fit(train, TrainConfig{}); err != nil {
		t.Fatal(err)
	}
	// Pick a point that clearly belongs to class 1, then forbid class 1.
	x := []float64{0.9, 0.1, 0.1}
	full, _, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if full != 1 {
		t.Skipf("trained model classifies the probe as %d; restriction test not meaningful", full)
	}
	c, conf, err := m.PredictRestricted(x, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c == 1 {
		t.Error("restricted prediction must not return a forbidden class")
	}
	if conf <= 0 || conf > 1 {
		t.Errorf("restricted confidence = %v", conf)
	}
	// Empty restriction behaves like Predict.
	c2, _, err := m.PredictRestricted(x, nil)
	if err != nil || c2 != full {
		t.Errorf("empty restriction should equal Predict: %v %v", c2, err)
	}
	// Out-of-range allowed classes are ignored.
	c3, _, err := m.PredictRestricted(x, []int{7, 2})
	if err != nil || c3 != 2 {
		t.Errorf("out-of-range allowed entries should be ignored, got %d (%v)", c3, err)
	}
}

func TestUntrainedAndShapeErrors(t *testing.T) {
	var m Model
	if _, _, err := m.Predict([]float64{1}); err != ErrNotTrained {
		t.Errorf("expected ErrNotTrained, got %v", err)
	}
	tr := NewModel(2, 2)
	if err := tr.Fit(nil, TrainConfig{}); err == nil {
		t.Error("expected error for empty training set")
	}
	if err := tr.Fit([]Sample{{Features: []float64{1}, Label: 0}}, TrainConfig{}); err == nil {
		t.Error("expected error for wrong feature count")
	}
	if err := tr.Fit([]Sample{{Features: []float64{1, 2}, Label: 5}}, TrainConfig{}); err == nil {
		t.Error("expected error for out-of-range label")
	}
	if err := tr.Fit([]Sample{{Features: []float64{1, 2}, Label: 1}}, TrainConfig{Epochs: 1}); err != nil {
		t.Errorf("valid fit failed: %v", err)
	}
	if _, err := tr.Probabilities([]float64{1}); err == nil {
		t.Error("expected error for wrong probe size")
	}
	if _, err := tr.Accuracy(nil); err == nil {
		t.Error("expected error for empty accuracy set")
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := synthSamples(800, 5)
	a := NewModel(3, 3)
	b := NewModel(3, 3)
	if err := a.Fit(train, TrainConfig{Epochs: 30}); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train, TrainConfig{Epochs: 30}); err != nil {
		t.Fatal(err)
	}
	for c := range a.Weights {
		for i := range a.Weights[c] {
			if a.Weights[c][i] != b.Weights[c][i] {
				t.Fatal("training must be deterministic for a fixed config")
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := NewModel(3, 3)
	if err := m.Fit(synthSamples(500, 6), TrainConfig{Epochs: 20}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.7, 0.2}
	c1, p1, _ := m.Predict(x)
	c2, p2, _ := back.Predict(x)
	if c1 != c2 || math.Abs(p1-p2) > 1e-12 {
		t.Error("loaded model must predict identically")
	}
	// Corrupt payloads are rejected.
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Error("expected error for truncated JSON")
	}
	if _, err := Load(bytes.NewBufferString(`{"num_features":2,"num_classes":3,"weights":[[0,0,0]]}`)); err == nil {
		t.Error("expected error for class count mismatch")
	}
	if _, err := Load(bytes.NewBufferString(`{"num_features":2,"num_classes":1,"weights":[[0,0]]}`)); err == nil {
		t.Error("expected error for weight length mismatch")
	}
}

// Property: probabilities are always a distribution, for any finite features.
func TestProbabilityDistributionProperty(t *testing.T) {
	m := NewModel(3, 5)
	if err := m.Fit(synthSamples(300, 7), TrainConfig{Epochs: 10}); err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c int16) bool {
		x := []float64{float64(a) / 1000, float64(b) / 1000, float64(c) / 1000}
		probs, err := m.Probabilities(x)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmoidClamping(t *testing.T) {
	if s := sigmoid(-1000); s <= 0 || s > 1e-6 {
		t.Errorf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(1000); s < 1-1e-6 || s >= 1 {
		t.Errorf("sigmoid(1000) = %v", s)
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Error("sigmoid(0) should be 0.5")
	}
}
