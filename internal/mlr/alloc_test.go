package mlr

import (
	"reflect"
	"testing"
)

// TestBufferedPredictionZeroAlloc is the CI allocation gate of the buffered
// evaluation path: with a caller-provided probability buffer of sufficient
// capacity, ProbabilitiesInto, PredictBuf and PredictRestrictedBuf must not
// allocate. These are the per-predicted-event calls of the PES predictor.
func TestBufferedPredictionZeroAlloc(t *testing.T) {
	m := NewModel(3, 4)
	if err := m.Fit(synthSamples(500, 1), TrainConfig{}); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, 0.7, 0.1}
	buf := make([]float64, m.NumClasses)
	allowed := []int{0, 2}

	if avg := testing.AllocsPerRun(200, func() {
		if _, err := m.ProbabilitiesInto(buf, x); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("ProbabilitiesInto allocates %.1f objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, _, err := m.PredictBuf(buf, x); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("PredictBuf allocates %.1f objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, _, err := m.PredictRestrictedBuf(buf, x, allowed); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("PredictRestrictedBuf allocates %.1f objects per call, want 0", avg)
	}
}

// TestBufferedMatchesUnbuffered pins the buffered variants to the original
// allocating APIs: same probabilities, same class, same confidence.
func TestBufferedMatchesUnbuffered(t *testing.T) {
	m := NewModel(3, 4)
	if err := m.Fit(synthSamples(500, 1), TrainConfig{}); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, m.NumClasses)
	for _, x := range [][]float64{{0.2, 0.7, 0.1}, {0.9, 0.05, 0.05}, {0, 0, 1}} {
		want, err := m.Probabilities(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.ProbabilitiesInto(buf, x)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("ProbabilitiesInto(%v) = %v, want %v", x, got, want)
		}
		wc, wp, err := m.PredictRestricted(x, []int{1, 3})
		if err != nil {
			t.Fatal(err)
		}
		gc, gp, _, err := m.PredictRestrictedBuf(buf, x, []int{1, 3})
		if err != nil {
			t.Fatal(err)
		}
		if wc != gc || wp != gp {
			t.Errorf("PredictRestrictedBuf(%v) = (%d, %g), want (%d, %g)", x, gc, gp, wc, wp)
		}
	}
}
