package pes

import (
	"testing"
)

// TestPublicAPIEndToEnd exercises the facade the way the README's quickstart
// does: train, generate a session, run EBS and PES, compare.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end public API test is slow")
	}
	learner, err := TrainPredictor(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := AppByName("cnn")
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateTrace(app, 42)
	events, err := tr.Runtime()
	if err != nil {
		t.Fatal(err)
	}
	platform := Exynos5410()

	ebs := RunReactive(platform, app.Name, events, NewEBS(platform))
	pesSched := NewPES(platform, learner, app, tr.DOMSeed, DefaultPredictorConfig())
	pro := RunProactive(platform, app.Name, events, pesSched)
	oracle := RunProactive(platform, app.Name, events, NewOracle(platform, events))

	for _, r := range []*Result{ebs, pro, oracle} {
		if len(r.Outcomes) != len(events) {
			t.Fatalf("%s covered %d of %d events", r.Scheduler, len(r.Outcomes), len(events))
		}
		if r.TotalEnergyMJ <= 0 {
			t.Fatalf("%s reported no energy", r.Scheduler)
		}
	}
	if oracle.TotalEnergyMJ >= ebs.TotalEnergyMJ {
		t.Error("oracle should use less energy than EBS")
	}
}

// TestBatchFacade runs sessions through the public batch API the way the
// README's batch quickstart does.
func TestBatchFacade(t *testing.T) {
	platform := Exynos5410()
	spec, err := AppByName("cnn")
	if err != nil {
		t.Fatal(err)
	}
	var sessions []BatchSession
	for _, seed := range []int64{3, 4, 3} {
		s, err := NewSession(SessionSpec{
			Platform:  platform,
			Trace:     GenerateTraceWith(spec, seed, TraceOptions{MaxEvents: 12}),
			Scheduler: "ebs",
		})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	runner := NewBatchRunner(2)
	results, err := runner.Run(sessions)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r == nil || r.TotalEnergyMJ <= 0 || r.Scheduler != "EBS" {
			t.Fatalf("result %d bad: %+v", i, r)
		}
	}
	if results[0] != results[2] {
		t.Error("duplicate seed should be memoized")
	}
	if st := runner.Stats(); st.UniqueRuns != 2 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 2 unique / 1 hit", st)
	}
}

func TestPublicAPISurface(t *testing.T) {
	if len(Apps()) != 18 || len(SeenApps()) != 12 || len(UnseenApps()) != 6 {
		t.Error("application suite sizes wrong")
	}
	if _, err := AppByName("not-an-app"); err == nil {
		t.Error("expected error for unknown app")
	}
	if Exynos5410().Name != "Exynos5410" || TX2Parker().Name != "TX2Parker" {
		t.Error("platform constructors wrong")
	}
	cfg := DefaultPredictorConfig()
	if cfg.ConfidenceThreshold != 0.70 || !cfg.UseDOMAnalysis {
		t.Error("default predictor config should match the paper")
	}
	ec := DefaultExperimentConfig()
	if ec.EvalTracesPerApp != 3 {
		t.Error("default experiment config should use 3 eval traces per app")
	}
	app, _ := AppByName("ebay")
	tr := GenerateTraceWith(app, 7, TraceOptions{MaxEvents: 20})
	if tr.Count() > 20 {
		t.Error("trace options not honoured")
	}
}
